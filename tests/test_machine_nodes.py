"""Tests for compute/I/O nodes, machine assembly, and presets."""

import pytest

from repro.machine import (
    CPUParams,
    IONodeParams,
    Machine,
    MachineConfig,
    paragon_large,
    paragon_small,
    sp2,
)
from repro.machine.node import ComputeNode, IONode
from repro.machine.params import KB, MB
from repro.sim import Environment


class TestComputeNode:
    def test_compute_time_scales_with_flops(self, env):
        node = ComputeNode(env, 0, CPUParams(mflops=100), 32 * MB)
        assert node.compute_time(1e8) == pytest.approx(1.0)

    def test_negative_flops_rejected(self, env):
        node = ComputeNode(env, 0, CPUParams(), 32 * MB)
        with pytest.raises(ValueError):
            node.compute_time(-1)

    def test_compute_advances_clock_and_busy_time(self, env):
        node = ComputeNode(env, 0, CPUParams(mflops=50), 32 * MB)
        def p(env):
            yield from node.compute(5e7)
            return env.now
        assert env.run(env.process(p(env))) == pytest.approx(1.0)
        assert node.busy_time == pytest.approx(1.0)

    def test_memcpy_uses_memcpy_rate(self, env):
        node = ComputeNode(env, 0, CPUParams(memcpy_rate=10 * MB), 32 * MB)
        def p(env):
            yield from node.memcpy(10 * MB)
            return env.now
        assert env.run(env.process(p(env))) == pytest.approx(1.0)

    def test_memory_container_has_node_capacity(self, env):
        node = ComputeNode(env, 0, CPUParams(), 16 * MB)
        assert node.memory.capacity == 16 * MB


class TestIONode:
    def test_serve_validates_disk_index(self, env):
        node = IONode(env, 0, IONodeParams(disks_per_node=2))
        def p(env):
            yield from node.serve(5, 0, 100)
        with pytest.raises(IndexError):
            env.run(env.process(p(env)))

    def test_requests_on_same_disk_serialize(self, env):
        node = IONode(env, 0, IONodeParams(disks_per_node=1))
        ends = []
        def client(env, offset):
            yield from node.serve(0, offset, 512 * KB)
            ends.append(env.now)
        env.process(client(env, 0))
        env.process(client(env, 100 * MB))
        env.run()
        assert ends[1] > 1.8 * ends[0]

    def test_requests_on_different_disks_parallel(self, env):
        node = IONode(env, 0, IONodeParams(disks_per_node=2))
        ends = []
        def client(env, disk):
            yield from node.serve(disk, 0, 512 * KB)
            ends.append(env.now)
        env.process(client(env, 0))
        env.process(client(env, 1))
        env.run()
        assert ends[0] == pytest.approx(ends[1])

    def test_stats_accumulate(self, env):
        node = IONode(env, 0, IONodeParams())
        def p(env):
            yield from node.serve(0, 0, 1000, write=True)
            yield from node.serve(0, 1000, 2000, write=False)
        env.process(p(env))
        env.run()
        assert node.stats.requests == 2
        assert node.stats.bytes_written == 1000
        assert node.stats.bytes_read == 2000


class TestMachineConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(n_compute=0)
        with pytest.raises(ValueError):
            MachineConfig(n_io=0)
        with pytest.raises(ValueError):
            MachineConfig(memory_per_node=0)

    def test_with_creates_modified_copy(self):
        cfg = MachineConfig(n_compute=8)
        cfg2 = cfg.with_(n_io=4)
        assert cfg2.n_io == 4 and cfg2.n_compute == 8
        assert cfg.n_io != 4 or cfg.n_io == cfg2.n_io  # original untouched

    def test_unknown_topology_rejected_at_build(self):
        cfg = MachineConfig()
        object.__setattr__(cfg, "topology", "torus")
        with pytest.raises(ValueError):
            Machine(cfg)


class TestMachine:
    def test_node_addressing(self):
        m = Machine(MachineConfig(n_compute=4, n_io=2))
        assert m.io_address(0) == 4
        assert m.io_address(1) == 5
        with pytest.raises(IndexError):
            m.io_address(2)

    def test_machine_builds_requested_nodes(self):
        m = Machine(MachineConfig(n_compute=6, n_io=3))
        assert len(m.compute_nodes) == 6
        assert len(m.io_nodes) == 3
        assert m.topology.n_nodes() >= 9

    def test_shared_environment(self):
        env = Environment()
        m = Machine(MachineConfig(), env=env)
        assert m.env is env


class TestPresets:
    def test_paragon_small_limits(self):
        with pytest.raises(ValueError):
            paragon_small(n_compute=100)
        with pytest.raises(ValueError):
            paragon_small(n_io=3)
        cfg = paragon_small(16, 4)
        assert cfg.n_compute == 16 and cfg.n_io == 4
        assert cfg.default_stripe_unit == 64 * KB
        assert cfg.topology == "mesh"

    def test_paragon_large_limits(self):
        with pytest.raises(ValueError):
            paragon_large(n_compute=1024)
        with pytest.raises(ValueError):
            paragon_large(n_io=10)
        for n_io in (12, 16, 64):
            assert paragon_large(n_io=n_io).n_io == n_io

    def test_sp2_fixed_io_partition(self):
        cfg = sp2(36)
        assert cfg.n_io == 4
        assert cfg.default_stripe_unit == 32 * KB
        assert cfg.topology == "switch"
        with pytest.raises(ValueError):
            sp2(100)

    def test_sp2_cpu_faster_than_paragon(self):
        assert sp2().cpu.mflops > paragon_small().cpu.mflops
