"""Tests for the synthetic-workload DSL."""

import pytest

from repro.iolib import UnixIO
from repro.machine import paragon_small, sp2
from repro.trace import IOOp
from repro.workloads import (
    BarrierPhase,
    ComputePhase,
    ReadPhase,
    Repeat,
    SyntheticWorkload,
    WritePhase,
)

KB = 1024
MB = 1024 * KB


class TestPhaseValidation:
    def test_compute_phase(self):
        with pytest.raises(ValueError):
            ComputePhase(flops_per_rank=-1)

    def test_io_phase_sizes(self):
        with pytest.raises(ValueError):
            WritePhase(file="f", bytes_per_rank=0, chunk_bytes=KB)
        with pytest.raises(ValueError):
            ReadPhase(file="f", bytes_per_rank=KB, chunk_bytes=0)

    def test_pattern_validated(self):
        with pytest.raises(ValueError):
            WritePhase(file="f", bytes_per_rank=KB, chunk_bytes=KB,
                       pattern="spiral")

    def test_repeat_validated(self):
        with pytest.raises(ValueError):
            Repeat(0, [BarrierPhase()])

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            SyntheticWorkload("empty", [])


class TestRequestGeneration:
    def test_contiguous_requests(self):
        ph = WritePhase(file="f", bytes_per_rank=4 * KB, chunk_bytes=KB)
        reqs = ph.requests(rank=2, n_ranks=4)
        assert [r.offset for r in reqs] == [8 * KB, 9 * KB, 10 * KB,
                                            11 * KB]
        assert all(r.nbytes == KB for r in reqs)

    def test_strided_requests(self):
        ph = WritePhase(file="f", bytes_per_rank=3 * KB, chunk_bytes=KB,
                        pattern="strided")
        reqs = ph.requests(rank=1, n_ranks=4)
        assert [r.offset for r in reqs] == [KB, 5 * KB, 9 * KB]

    def test_tail_chunk_shorter(self):
        ph = ReadPhase(file="f", bytes_per_rank=2500, chunk_bytes=KB)
        reqs = ph.requests(0, 2)
        assert [r.nbytes for r in reqs] == [1024, 1024, 452]

    def test_base_offset_shifts_everything(self):
        ph = WritePhase(file="f", bytes_per_rank=KB, chunk_bytes=KB,
                        base_offset=1 * MB)
        assert ph.requests(0, 2)[0].offset == 1 * MB

    def test_ranks_cover_disjoint_regions(self):
        ph = WritePhase(file="f", bytes_per_rank=4 * KB, chunk_bytes=KB,
                        pattern="strided")
        seen = set()
        for rank in range(4):
            for r in ph.requests(rank, 4):
                span = (r.offset, r.offset + r.nbytes)
                assert span not in seen
                seen.add(span)


class TestExecution:
    def _basic(self):
        return SyntheticWorkload("basic", [
            ComputePhase(flops_per_rank=1e7),
            WritePhase(file="data", bytes_per_rank=256 * KB,
                       chunk_bytes=64 * KB),
            ReadPhase(file="data", bytes_per_rank=256 * KB,
                      chunk_bytes=64 * KB),
        ])

    def test_basic_run_produces_result(self):
        res = self._basic().run(paragon_small(4, 2), 4)
        assert res.app == "synthetic:basic"
        assert res.exec_time > 0
        assert 0 < res.io_time < res.exec_time
        assert res.trace.aggregate(IOOp.WRITE).nbytes == 4 * 256 * KB
        assert res.trace.aggregate(IOOp.READ).nbytes == 4 * 256 * KB

    def test_total_bytes_accounting(self):
        wl = SyntheticWorkload("acct", [
            Repeat(3, [WritePhase(file="a", bytes_per_rank=KB,
                                  chunk_bytes=KB)]),
            ReadPhase(file="a", bytes_per_rank=2 * KB, chunk_bytes=KB),
        ])
        assert wl.total_bytes(4) == 3 * 4 * KB + 4 * 2 * KB

    def test_repeat_multiplies_io(self):
        wl1 = SyntheticWorkload("w1", [
            WritePhase(file="a", bytes_per_rank=64 * KB,
                       chunk_bytes=64 * KB)])
        wl3 = SyntheticWorkload("w3", [
            Repeat(3, [WritePhase(file="a", bytes_per_rank=64 * KB,
                                  chunk_bytes=64 * KB)])])
        r1 = wl1.run(paragon_small(4, 2), 2)
        r3 = wl3.run(paragon_small(4, 2), 2)
        assert r3.trace.aggregate(IOOp.WRITE).count == \
            3 * r1.trace.aggregate(IOOp.WRITE).count

    def test_collective_strided_beats_independent(self):
        def wl(collective):
            return SyntheticWorkload("c", [
                WritePhase(file="shared", bytes_per_rank=512 * KB,
                           chunk_bytes=2 * KB, pattern="strided",
                           collective=collective),
            ])
        # Unix interface on an SP-2 (shared-file token, seek-heavy).
        t_ind = wl(False).run(sp2(9), 9, interface_cls=UnixIO).io_time
        t_col = wl(True).run(sp2(9), 9).io_time
        assert t_col < 0.5 * t_ind

    def test_interface_choice_matters(self):
        wl = self._basic()
        t_unix = wl.run(paragon_small(4, 2), 4,
                        interface_cls=UnixIO).io_time
        t_passion = wl.run(paragon_small(4, 2), 4).io_time
        assert t_passion < t_unix

    def test_sp2_preset_uses_piofs(self):
        res = self._basic().run(sp2(4), 4)
        assert res.exec_time > 0

    def test_barrier_phase_synchronizes(self):
        wl = SyntheticWorkload("b", [
            ComputePhase(flops_per_rank=1e6),
            BarrierPhase(),
            ComputePhase(flops_per_rank=1e6),
        ])
        res = wl.run(paragon_small(4, 2), 4)
        assert res.io_time == 0.0

    def test_results_feed_the_planner(self):
        from repro.advisor import OptimizationPlanner, WorkloadProfile
        wl = SyntheticWorkload("tiny-writes", [
            Repeat(4, [WritePhase(file="shared", bytes_per_rank=256 * KB,
                                  chunk_bytes=KB, pattern="strided")]),
        ])
        res = wl.run(sp2(4), 4, interface_cls=UnixIO)
        prof = WorkloadProfile.from_result(res, interface="unix",
                                           shared_file=True)
        techs = OptimizationPlanner().techniques(prof)
        assert techs and techs[0] == "collective I/O"
