#!/usr/bin/env python3
"""Hardware vs software: when does adding I/O nodes beat better code?

The paper's central question (its Figure 2): given an I/O-bound
application, compare spending on *software* (the PASSION interface +
prefetching) against spending on *hardware* (more I/O nodes), across
processor counts.  Below a balance point, software wins; beyond it, the
architecture must grow.

This example runs the SCF 1.1 workload (MEDIUM input) over a grid of
{version} x {I/O nodes} x {processors} and prints the winner per cell.

Run:  python examples/architecture_balance.py
"""

from repro.apps.scf11 import SCF11Config, run_scf11
from repro.machine import paragon_large


def main():
    procs = [4, 16, 64, 128]
    variants = [
        ("unoptimized, 16 I/O nodes", "original", 16),
        ("unoptimized, 64 I/O nodes", "original", 64),
        ("optimized,   16 I/O nodes", "prefetch", 16),
        ("optimized,   64 I/O nodes", "prefetch", 64),
    ]
    print("SCF 1.1 (MEDIUM input) execution time in simulated seconds")
    print("=" * 72)
    header = f"{'configuration':28s}" + "".join(f"{f'P={p}':>10s}"
                                                for p in procs)
    print(header)
    print("-" * len(header))
    table = {}
    for label, version, n_io in variants:
        cfg = SCF11Config(n_basis=140, version=version,
                          measured_read_iters=2)
        row = []
        for p in procs:
            res = run_scf11(paragon_large(n_compute=max(p, 4), n_io=n_io),
                            cfg, p)
            row.append(res.exec_time)
            table[(label, p)] = res.exec_time
        print(f"{label:28s}" + "".join(f"{t:10.0f}" for t in row))

    print("\nwinner per processor count:")
    for p in procs:
        best = min(variants, key=lambda v: table[(v[0], p)])
        sw = table[("optimized,   16 I/O nodes", p)]
        hw = table[("unoptimized, 64 I/O nodes", p)]
        verdict = ("software optimization beats 4x the I/O hardware"
                   if sw < hw else
                   "more I/O hardware now beats software optimization")
        print(f"  P={p:4d}: best = {best[0]}  [{verdict}]")
    print("\nThe flip is the paper's architectural-balance result: past a")
    print("certain compute/I/O ratio no software can compensate for")
    print("missing I/O nodes.")


if __name__ == "__main__":
    main()
