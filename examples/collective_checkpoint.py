#!/usr/bin/env python3
"""Collective checkpointing: independent strided writes vs two-phase I/O.

A BTIO/AST-style scenario: 16 simulated processes periodically dump an
interleaved solution array to one shared file on an SP-2.  The independent
version issues one small write per owned piece; the collective version
routes the same pieces through two-phase I/O so each process writes one
contiguous file domain.

Run:  python examples/collective_checkpoint.py
"""

from repro.iolib import IORequest, PassionIO, TwoPhaseIO, UnixIO
from repro.machine import Machine, sp2
from repro.mp import Communicator
from repro.pfs import PIOFS
from repro.trace import IOOp, TraceCollector

KB = 1024
MB = 1024 * KB

N_PROCS = 16
N_DUMPS = 5
PIECES_PER_RANK = 256
PIECE_BYTES = 2 * KB


def make_requests(rank, dump):
    """Rank's pieces of one dump: interleaved round-robin regions."""
    dump_bytes = N_PROCS * PIECES_PER_RANK * PIECE_BYTES
    base = dump * dump_bytes
    return [IORequest(base + (k * N_PROCS + rank) * PIECE_BYTES, PIECE_BYTES)
            for k in range(PIECES_PER_RANK)]


def independent(rank, comm, interface, results):
    env = comm.env
    f = yield from interface.open(rank, "ckpt.dat", create=True)
    t_io = 0.0
    for dump in range(N_DUMPS):
        t0 = env.now
        for req in make_requests(rank, dump):
            yield from f.seek(req.offset)
            yield from f.write(req.nbytes)
        t_io += env.now - t0
        yield from comm.barrier(rank)
    yield from f.close()
    results[rank] = t_io


def collective(rank, comm, interface, results):
    env = comm.env
    f = yield from interface.open(rank, "ckpt.dat", create=True)
    twophase = TwoPhaseIO(comm)
    t_io = 0.0
    for dump in range(N_DUMPS):
        t0 = env.now
        yield from twophase.collective_write(rank, f,
                                             make_requests(rank, dump))
        t_io += env.now - t0
        yield from comm.barrier(rank)
    yield from f.close()
    results[rank] = t_io


def run(program, interface_cls):
    machine = Machine(sp2(N_PROCS))
    fs = PIOFS(machine)
    trace = TraceCollector()
    interface = interface_cls(fs, trace=trace)
    comm = Communicator(machine, N_PROCS)
    results = {}
    procs = comm.spawn(program, interface, results)
    machine.env.run(machine.env.all_of(procs))
    return machine, trace, max(results.values())


def main():
    volume = N_DUMPS * N_PROCS * PIECES_PER_RANK * PIECE_BYTES
    print(f"Checkpointing {volume / MB:.0f} MiB over {N_DUMPS} dumps, "
          f"{N_PROCS} processes, SP-2 with 4 PIOFS I/O nodes")
    print("=" * 64)
    out = {}
    for label, program, cls in [("independent (Unix-style)", independent,
                                 UnixIO),
                                ("two-phase collective", collective,
                                 PassionIO)]:
        machine, trace, io_time = run(program, cls)
        writes = trace.aggregate(IOOp.WRITE)
        bw = volume / io_time / MB
        out[label] = io_time
        print(f"\n{label}:")
        print(f"  file-system write calls: {writes.count:7,d} "
              f"(mean {writes.nbytes / writes.count / KB:.0f} KB)")
        print(f"  I/O time (slowest rank): {io_time:9.2f} s")
        print(f"  effective bandwidth:     {bw:9.2f} MB/s")
    speedup = out["independent (Unix-style)"] / out["two-phase collective"]
    print(f"\nTwo-phase collective I/O: {speedup:.1f}x faster — the paper's "
          f"BTIO/AST result in miniature.")


if __name__ == "__main__":
    main()
