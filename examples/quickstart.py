#!/usr/bin/env python3
"""Quickstart: simulate parallel I/O on a 1990s supercomputer.

Builds a small Intel Paragon, runs four simulated processes that write and
read a striped file through the PFS, and prints what it cost — then shows
the single most important effect in the paper: the same bytes moved as many
small requests vs one large request.

Run:  python examples/quickstart.py
"""

from repro.machine import Machine, paragon_small
from repro.mp import Communicator
from repro.iolib import PassionIO
from repro.pfs import PFS
from repro.trace import IOOp, TraceCollector, summarize

KB = 1024
MB = 1024 * KB


def rank_program(rank, comm, interface, chunk_bytes, total_bytes, results):
    """Each rank writes its region, then reads it back in chunks."""
    env = comm.env
    f = yield from interface.open(rank, "quickstart.dat", create=True)
    base = rank * total_bytes

    t0 = env.now
    pos = 0
    while pos < total_bytes:
        n = min(chunk_bytes, total_bytes - pos)
        yield from f.pwrite(base + pos, n)
        pos += n
    write_time = env.now - t0

    yield from comm.barrier(rank)

    t0 = env.now
    pos = 0
    while pos < total_bytes:
        n = min(chunk_bytes, total_bytes - pos)
        yield from f.pread(base + pos, n)
        pos += n
    read_time = env.now - t0

    yield from f.close()
    results[rank] = (write_time, read_time)


def run(chunk_bytes):
    machine = Machine(paragon_small(n_compute=4, n_io=2))
    fs = PFS(machine)
    trace = TraceCollector()
    interface = PassionIO(fs, trace=trace)
    comm = Communicator(machine, 4)
    results = {}
    procs = comm.spawn(rank_program, interface, chunk_bytes, 4 * MB, results)
    machine.env.run(machine.env.all_of(procs))
    return machine, trace, results


def main():
    print("Paragon, 4 compute nodes, 2 I/O nodes, 4 MB per process")
    print("=" * 64)
    for chunk in (4 * KB, 64 * KB, 1 * MB):
        machine, trace, results = run(chunk)
        reads = trace.aggregate(IOOp.READ)
        writes = trace.aggregate(IOOp.WRITE)
        wall = machine.now
        print(f"\nchunk size {chunk // KB:>5} KB: "
              f"{writes.count + reads.count:6d} requests, "
              f"simulated wall time {wall:7.2f} s")
        summary = summarize(trace, exec_time=wall * 4)
        print(summary.to_text("  per-operation breakdown"))
    print("\nSame data, three orders of magnitude apart in request count —")
    print("that gap is what the paper's optimizations exist to close.")


if __name__ == "__main__":
    main()
