#!/usr/bin/env python3
"""Pablo-style I/O profiling: regenerate a Table-2/3-like breakdown.

Runs the SCF 1.1 workload (SMALL input so it finishes in seconds) through
both the original Fortran interface and the PASSION interface, tracing
every application-level I/O operation, and prints the two per-operation
summaries side by side — the same methodology as the paper's Tables 2/3.

Run:  python examples/trace_io_profile.py
"""

from repro.apps.scf11 import SCF11Config, run_scf11
from repro.machine import paragon_large
from repro.trace import IOOp, summarize


def profile(version):
    cfg = SCF11Config(n_basis=108, version=version, measured_read_iters=2)
    res = run_scf11(paragon_large(n_compute=4, n_io=12), cfg, 4)
    # The paper aggregates per-op durations over all processes against
    # total execution time.
    return res, summarize(res.trace, exec_time=res.exec_time * 4)


def main():
    print("SCF 1.1 (SMALL input, 4 processors, 12 I/O nodes)")
    print("=" * 64)
    results = {}
    for version, title in [("original", "Original version (Fortran I/O)"),
                           ("passion", "PASSION version (direct calls)")]:
        res, summary = profile(version)
        results[version] = (res, summary)
        print()
        print(summary.to_text(title))
        print(f"  execution time: {res.exec_time:,.1f} s   "
              f"I/O share: {summary.all.pct_exec_time:.1f}%")

    orig = results["original"][1]
    pas = results["passion"][1]
    print()
    print("What changed (the paper's Tables 2 -> 3):")
    ratio = orig.all.time_s / pas.all.time_s
    print(f"  total I/O time cut {ratio:.2f}x at identical volume "
          f"({orig.all.volume_gb:.2f} GB)")
    seeks = pas.row(IOOp.SEEK)
    print(f"  the efficient interface seeks explicitly — {seeks.count:,d} "
          f"seeks costing only {seeks.pct_io_time:.2f}% of I/O time")
    print(f"  per-read time: "
          f"{orig.row(IOOp.READ).time_s / orig.row(IOOp.READ).count * 1e3:.1f}"
          f" ms -> "
          f"{pas.row(IOOp.READ).time_s / pas.row(IOOp.READ).count * 1e3:.1f}"
          f" ms")


if __name__ == "__main__":
    main()
