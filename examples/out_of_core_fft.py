#!/usr/bin/env python3
"""Out-of-core FFT: verify numerics, then measure the layout optimization.

Part 1 pushes real complex data through the simulated parallel file system
and checks the out-of-core pipeline against ``numpy.fft.fft2`` exactly.

Part 2 runs the paper's Figure-5 comparison at a reduced scale: the
unoptimized (both arrays column-major) transpose against the layout-
optimized one (second array row-major), on 2 and 4 I/O nodes.

Run:  python examples/out_of_core_fft.py
"""

import numpy as np

from repro.apps.fft2d import FFTConfig, read_result, run_fft
from repro.machine import paragon_small

KB = 1024


def verify_numerics():
    print("Part 1: functional verification against numpy")
    print("-" * 56)
    rng = np.random.default_rng(2026)
    n = 64
    x = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    cfg = FFTConfig(n=n, version="unoptimized",
                    panel_memory_bytes=n * 16 * 8, functional=True)
    res = run_fft(paragon_small(4, 2), cfg, 4, initial=x)
    out = read_result(res, cfg)
    err = np.abs(out - np.fft.fft2(x).T).max()
    print(f"  {n}x{n} complex FFT through simulated disk files")
    print(f"  max |error| vs numpy.fft.fft2: {err:.2e}")
    assert err < 1e-10
    print("  exact match — every byte went through the striped files\n")


def measure_layouts():
    print("Part 2: the file-layout optimization (paper Figure 5)")
    print("-" * 56)
    n = 2048
    mem = 1024 * KB
    print(f"  array {n}x{n} complex ({n * n * 16 / 2**20:.0f} MiB each), "
          f"{mem // KB} KB panels, 8 compute nodes\n")
    rows = []
    for label, version, n_io in [
            ("unoptimized, 2 I/O nodes", "unoptimized", 2),
            ("unoptimized, 4 I/O nodes", "unoptimized", 4),
            ("layout-opt,  2 I/O nodes", "layout", 2)]:
        cfg = FFTConfig(n=n, version=version, panel_memory_bytes=mem)
        res = run_fft(paragon_small(8, n_io), cfg, 8)
        rows.append((label, res))
        print(f"  {label}: I/O {res.io_time:7.1f} s   "
              f"total {res.exec_time:7.1f} s   "
              f"(I/O = {res.io_time / res.exec_time:.0%} of total)")
    unopt4 = rows[1][1]
    layout2 = rows[2][1]
    print(f"\n  Storing ONE array row-major on HALF the I/O nodes beats")
    print(f"  doubling the hardware: {layout2.io_time:.0f} s vs "
          f"{unopt4.io_time:.0f} s "
          f"({unopt4.io_time / layout2.io_time:.1f}x).")


if __name__ == "__main__":
    verify_numerics()
    measure_layouts()
