#!/usr/bin/env python3
"""The paper's conclusions as a tool: profile a workload, get a plan.

Runs each of the five applications in its *unoptimized* form, derives a
workload profile from the measured trace, and asks the optimization
planner (the paper's §5 prescription) what to do — then shows the
compiler-style layout advisor solving the FFT's transpose conflict from
its loop nests alone.

Run:  python examples/optimization_advisor.py
"""

from repro.advisor import (
    AffineExpr,
    ArrayRef,
    Loop,
    LoopNest,
    OptimizationPlanner,
    WorkloadProfile,
    choose_layouts,
)
from repro.apps.astro import ASTConfig, run_ast
from repro.apps.btio import BTIOConfig, run_btio
from repro.apps.fft2d import FFTConfig, run_fft
from repro.apps.scf11 import SCF11Config, run_scf11
from repro.machine import paragon_large, paragon_small, sp2


def profiles():
    """Measured profiles of the unoptimized applications."""
    yield WorkloadProfile.from_result(
        run_scf11(paragon_large(4, 12),
                  SCF11Config(n_basis=108, version="original",
                              measured_read_iters=1), 4),
        interface="fortran", shared_file=False, overlap_potential=0.9)
    yield WorkloadProfile.from_result(
        run_fft(paragon_small(4, 2),
                FFTConfig(n=1024, version="unoptimized",
                          panel_memory_bytes=256 * 1024), 4),
        interface="passion", shared_file=True, layout_conflict=True)
    yield WorkloadProfile.from_result(
        run_btio(sp2(9), BTIOConfig(class_name="W", measured_dumps=1), 9),
        interface="unix", shared_file=True)
    yield WorkloadProfile.from_result(
        run_ast(paragon_large(8, 12),
                ASTConfig(array_n=512, n_fields=2, n_steps=8,
                          dump_interval=4, version="chameleon",
                          measured_dumps=1), 8),
        interface="chameleon", shared_file=True)


def main():
    planner = OptimizationPlanner()
    print("Part 1: what should each application do? (paper §5, executable)")
    print("=" * 68)
    for prof in profiles():
        print()
        print(planner.to_text(prof))

    print()
    print("Part 2: deriving the FFT's file layouts from its loop nests")
    print("=" * 68)
    i, j = AffineExpr.var("i"), AffineExpr.var("j")
    n = 4096
    program = [
        LoopNest(loops=[Loop("j", n), Loop("i", n)],
                 refs=[ArrayRef("A", i, j),
                       ArrayRef("A", i, j, is_write=True)]),   # column FFT
        LoopNest(loops=[Loop("j", n), Loop("i", n)],
                 refs=[ArrayRef("A", i, j),
                       ArrayRef("B", j, i, is_write=True)]),   # transpose
        LoopNest(loops=[Loop("j", n), Loop("i", n)],
                 refs=[ArrayRef("B", j, i),
                       ArrayRef("B", j, i, is_write=True)]),   # second pass
    ]
    plan = choose_layouts(program)
    print(plan.to_text())
    print("\nThe advisor re-derives the paper's §4.4 optimization: keep A")
    print("column-major, store B row-major — no measurement needed.")


if __name__ == "__main__":
    main()
