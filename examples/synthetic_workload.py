#!/usr/bin/env python3
"""Design your own I/O-intensive application with the workload DSL.

Builds a synthetic "simulation with periodic checkpoints" workload and
sweeps the design space the paper cares about: request granularity ×
independent-vs-collective I/O × interface — on an SP-2, then asks the
optimization planner whether it agrees with the measurements.

Run:  python examples/synthetic_workload.py
"""

from repro.advisor import OptimizationPlanner, WorkloadProfile
from repro.iolib import PassionIO, UnixIO
from repro.machine import sp2
from repro.workloads import (
    ComputePhase,
    ReadPhase,
    Repeat,
    SyntheticWorkload,
    WritePhase,
)

KB = 1024
MB = 1024 * KB

N_PROCS = 16
CKPT_BYTES = 2 * MB          # per rank per checkpoint
STEPS = 4


def checkpointer(chunk_bytes, collective):
    return SyntheticWorkload(
        f"ckpt/{chunk_bytes // KB}KB/{'coll' if collective else 'ind'}",
        [
            Repeat(STEPS, [
                ComputePhase(flops_per_rank=6e8),
                WritePhase(file="ckpt", bytes_per_rank=CKPT_BYTES,
                           chunk_bytes=chunk_bytes, pattern="strided",
                           collective=collective),
            ]),
            # Restart read at the end (validation pass).
            ReadPhase(file="ckpt", bytes_per_rank=CKPT_BYTES,
                      chunk_bytes=256 * KB),
        ])


def main():
    volume = STEPS * N_PROCS * CKPT_BYTES / MB
    print(f"Synthetic checkpointing study: {N_PROCS} ranks, "
          f"{volume:.0f} MiB written, SP-2/PIOFS")
    print("=" * 66)
    print(f"{'configuration':>34s} {'exec(s)':>9s} {'io(s)':>8s} "
          f"{'bw(MB/s)':>9s}")
    results = {}
    for chunk in (2 * KB, 64 * KB):
        for collective in (False, True):
            wl = checkpointer(chunk, collective)
            iface = PassionIO if collective else UnixIO
            res = wl.run(sp2(N_PROCS), N_PROCS, interface_cls=iface)
            bw = res.bandwidth_mb_s(wl.total_bytes(N_PROCS))
            results[wl.name] = res
            print(f"{wl.name:>34s} {res.exec_time:9.1f} {res.io_time:8.1f} "
                  f"{bw:9.1f}")

    worst = results["ckpt/2KB/ind"]
    print("\nWhat does the planner say about the worst configuration?")
    prof = WorkloadProfile.from_result(worst, interface="unix",
                                       shared_file=True)
    print(OptimizationPlanner().to_text(prof))
    print("\nIts first recommendation is exactly the switch the table "
          "above measures.")


if __name__ == "__main__":
    main()
